// Command graphalytics is the benchmark driver: it runs the full matrix
// of platforms × graphs × algorithms described by a properties file (or
// flags), validates outputs, and writes the report — the executable
// counterpart of the paper's "Graphalytics includes a Unix shell script
// that triggers the execution of the benchmark. After the execution
// completes, the benchmark report is available in the local file
// system" (§2.3).
//
// Usage:
//
//	graphalytics [flags]
//	graphalytics -config bench.properties
//
// Properties understood (flags override):
//
//	benchmark.run.platforms  = pregel,mapreduce,dataflow,graphdb
//	benchmark.run.algorithms = BFS,CD,CONN,EVO,STATS,PR,SSSP,LCC
//	benchmark.run.graphs     = social:10000,rmat:12,patents
//	benchmark.run.timeout    = 5m
//	benchmark.run.validate   = true
//	benchmark.run.parallel   = 4
//	benchmark.run.reps       = 5
//	benchmark.run.warmup     = 1
//	benchmark.run.retries    = 2
//	benchmark.output.dir     = report/
//	platform.dataflow.memory = 268435456
//	platform.graphdb.memory  = 268435456
//	platform.pregel.workers  = 8
//	platform.dataflow.workers = 4
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"graphalytics"
	"graphalytics/internal/algo"
	"graphalytics/internal/artifact"
	"graphalytics/internal/config"
	"graphalytics/internal/core"
	"graphalytics/internal/dist"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/gen/rmat"
	"graphalytics/internal/gen/surrogate"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/report"
	"graphalytics/internal/resultsdb"
	"graphalytics/internal/sched"
	"graphalytics/internal/stamp"
	"graphalytics/internal/telemetry"
	"graphalytics/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphalytics:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "", "properties file")
		platforms  = flag.String("platforms", "", "comma-separated platforms (default all)")
		algorithms = flag.String("algorithms", "", "comma-separated workloads, names or LDBC aliases (default: every registered workload)")
		graphsSpec = flag.String("graphs", "", "comma-separated graph specs (social:N, rmat:SCALE, amazon|youtube|livejournal|patents|wikipedia, or file:PATH.e)")
		weighted   = flag.Bool("weighted", false, "generate social/rmat graphs with seeded edge weights (SSSP consumes them)")
		loadWork   = flag.Int("load-workers", 0, "graph ingest workers: parallel parse, interning, and CSR build (0 = all cores, 1 = sequential loader)")
		platWork   = flag.Int("platform-workers", 0, "kernel workers per platform: pregel BSP workers, mapreduce slots, dataflow partitions (0 = all cores, 1 = sequential kernels; graphdb is single-threaded by design; per-platform override: platform.<name>.workers)")
		timeout    = flag.Duration("timeout", 5*time.Minute, "per-run timeout")
		outDir     = flag.String("out", "graphalytics-report", "report output directory")
		validate   = flag.Bool("validate", true, "validate outputs against the reference")
		parallel   = flag.Int("parallel", 0, "concurrent campaign jobs (0 = all cores, 1 = sequential)")
		reps       = flag.Int("reps", 1, "timed repetitions per cell (mean runtime reported)")
		warmup     = flag.Int("warmup", 0, "untimed warm-up executions per cell")
		retries    = flag.Int("retries", 0, "extra attempts for transiently failed cells")
		resume     = flag.String("resume", "", "checkpoint file: journal finished cells and skip them on re-run")
		cacheDir   = flag.String("cache-dir", "", "incremental campaign cache directory: generated graphs and platform ETL outputs are stored under their content fingerprint, and unchanged matrix cells restore from the stamped result store without executing (empty = caching off)")
		noCache    = flag.Bool("no-cache", false, "ignore -cache-dir and the benchmark.cache.dir property: run everything live")
		cacheVer   = flag.Bool("cache-verify", false, "verify cached artifacts on read (recompute content checksums); corrupted artifacts are regenerated")
		seed       = flag.Uint64("seed", 42, "generator / algorithm seed")
		submitURL  = flag.String("submit", "", "results-database base URL to submit the report to (e.g. http://localhost:8080)")
		submitter  = flag.String("submitter", "anonymous", "submitter name for -submit")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON timeline of the campaign to this file (open in chrome://tracing or Perfetto)")
		metricsAdr = flag.String("metrics-addr", "", "serve Prometheus metrics plus the live /status campaign view on this address while the campaign runs (e.g. :9090)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address while the campaign runs (e.g. :6060)")
		logFormat  = flag.String("log-format", "text", "structured log format: text or json")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		serveAddr  = flag.String("serve-campaign", "", "run as a distributed campaign manager: listen on this address (e.g. :7113) and lease matrix cells to graphrunner processes instead of executing them locally")
		leaseTO    = flag.Duration("lease-timeout", dist.DefaultLeaseTimeout, "distributed mode: re-lease a cell whose runner sends no progress for this long")
	)
	flag.Parse()
	if err := telemetry.SetupLogging(nil, *logFormat, *logLevel); err != nil {
		return err
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		telemetry.StartTrace(f)
		defer func() {
			if err := telemetry.StopTrace(); err != nil {
				slog.Error("trace write failed", "path", *tracePath, "err", err)
			}
			f.Close()
		}()
	}
	// The tracker backs the live /status view; it observes the schedule
	// whether or not a listener is configured (it is cheap when nobody
	// snapshots it).
	tracker := sched.NewTracker()
	if *metricsAdr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Metrics.Handler())
		mux.Handle("/status", statusJSONHandler(tracker))
		mux.Handle("/", statusPageHandler())
		go func() {
			if err := http.ListenAndServe(*metricsAdr, mux); err != nil {
				slog.Error("metrics listener failed", "addr", *metricsAdr, "err", err)
			}
		}()
	}
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				slog.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
			}
		}()
	}

	props := config.New()
	if *configPath != "" {
		loaded, err := config.LoadFile(*configPath)
		if err != nil {
			return err
		}
		props = loaded
	}
	pick := func(flagVal, key, def string) string {
		if flagVal != "" {
			return flagVal
		}
		return props.String(key, def)
	}

	platformNames := splitList(pick(*platforms, "benchmark.run.platforms", "pregel,mapreduce,dataflow,graphdb"))
	// An empty algorithm list means "every registered workload": the
	// registry, not this file, decides what the suite contains.
	algoNames := splitList(pick(*algorithms, "benchmark.run.algorithms", ""))
	graphSpecs := splitList(pick(*graphsSpec, "benchmark.run.graphs", "social:5000"))
	if v, err := props.Duration("benchmark.run.timeout", *timeout); err == nil {
		*timeout = v
	}
	if v, err := props.Bool("benchmark.run.validate", *validate); err == nil {
		*validate = v
	}
	if v, err := props.Bool("benchmark.run.weighted", *weighted); err == nil {
		*weighted = v
	}
	if v, err := props.Int64("benchmark.run.parallel", int64(*parallel)); err == nil {
		*parallel = int(v)
	}
	if v, err := props.Int64("benchmark.run.reps", int64(*reps)); err == nil {
		*reps = int(v)
	}
	if v, err := props.Int64("benchmark.run.warmup", int64(*warmup)); err == nil {
		*warmup = int(v)
	}
	if v, err := props.Int64("benchmark.run.retries", int64(*retries)); err == nil {
		*retries = int(v)
	}
	if v, err := props.Int64("benchmark.run.loadworkers", int64(*loadWork)); err == nil {
		*loadWork = int(v)
	}
	if v, err := props.Int64("benchmark.run.platformworkers", int64(*platWork)); err == nil {
		*platWork = int(v)
	}
	dir := pick(*outDir, "benchmark.output.dir", "graphalytics-report")

	// The incremental campaign cache: one directory holding generated
	// graphs, platform ETL blobs, and the stamped result store. -no-cache
	// wins over both the flag and the property.
	cachePath := pick(*cacheDir, "benchmark.cache.dir", "")
	if v, err := props.Bool("benchmark.cache.verify", *cacheVer); err == nil {
		*cacheVer = v
	}
	if *noCache {
		cachePath = ""
	}
	var cache *artifact.Cache
	var stamps *stamp.Store
	if cachePath != "" {
		c, err := artifact.Open(cachePath)
		if err != nil {
			return err
		}
		c.Verify = *cacheVer
		cache = c
		s, err := stamp.OpenStore(cache.StampStorePath())
		if err != nil {
			return err
		}
		defer s.Close()
		stamps = s
	}

	plats, err := buildPlatforms(platformNames, props, *platWork)
	if err != nil {
		return err
	}
	algs, err := parseAlgorithms(algoNames)
	if err != nil {
		return err
	}
	graphs, ingests, graphStamps, err := buildGraphs(graphSpecs, *seed, *weighted, *loadWork, cache)
	if err != nil {
		return err
	}

	bench := &core.Benchmark{
		Platforms:       plats,
		Graphs:          graphs,
		Algorithms:      algs,
		Params:          algo.Params{Seed: *seed},
		Timeout:         *timeout,
		Validate:        *validate,
		MonitorInterval: 10 * time.Millisecond,
		Parallelism:     *parallel,
		Reps:            *reps,
		Warmup:          *warmup,
		Retries:         *retries,
		CheckpointPath:  *resume,
		Ingests:         ingests,
		Tracker:         tracker,
		Stamps:          stamps,
		GraphStamps:     graphStamps,
		Artifacts:       cache,
		Progress: func(r report.RunResult) {
			extra := ""
			if r.Reps != nil {
				extra = fmt.Sprintf("  (reps %d: min %s mean %s max %s)",
					r.Reps.Reps, r.Reps.Min.Round(time.Microsecond),
					r.Reps.Mean.Round(time.Microsecond), r.Reps.Max.Round(time.Microsecond))
			}
			fmt.Printf("  %-10s %-14s %-6s %-10s %s%s\n", r.Platform, r.Graph, r.Algorithm, r.Status, r.Cell(), extra)
		},
	}
	// Distributed mode: instead of the local pool, a manager leases the
	// cells to graphrunner processes. Everything else — restore, retry,
	// journaling, stamping, collation, /status — is shared.
	if *serveAddr != "" {
		specs, err := platformSpecs(platformNames, props, *platWork)
		if err != nil {
			return err
		}
		graphsByName := make(map[string]*graph.Graph, len(graphs))
		for _, g := range graphs {
			graphsByName[g.Name()] = g
		}
		mgr, err := dist.NewManager(dist.ManagerOptions{
			Platforms:    specs,
			Graphs:       graphsByName,
			Artifacts:    cache,
			LeaseTimeout: *leaseTO,
		})
		if err != nil {
			return err
		}
		if err := mgr.Serve(*serveAddr); err != nil {
			return err
		}
		defer mgr.Close()
		bench.Executor = mgr
	}

	fmt.Printf("running %d platforms × %d graphs × %d algorithms\n", len(plats), len(graphs), len(algs))
	// Ctrl-C cancels the campaign context: the running kernel notices
	// within one check stride, in-flight cells come back cancelled (not
	// failed), and journaled cells survive for -resume. A second Ctrl-C
	// after stop() restores the default handler and kills the process.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	rep, err := bench.Run(ctx)
	stopSignals()
	if err != nil {
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			hint := ""
			if *resume != "" {
				hint = fmt.Sprintf("; re-run with -resume %s to continue", *resume)
			}
			return fmt.Errorf("interrupted: campaign cancelled, finished cells journaled%s", hint)
		}
		return err
	}
	fmt.Println(rep.Summary())
	var executed, uptodate, resumed int
	for _, r := range rep.Results {
		switch r.Provenance {
		case report.ProvenanceUptodate:
			uptodate++
		case report.ProvenanceResumed:
			resumed++
		default:
			executed++
		}
	}
	fmt.Printf("cells: %d executed, %d uptodate, %d resumed\n", executed, uptodate, resumed)
	if err := writeReport(dir, rep); err != nil {
		return err
	}
	if *submitURL != "" {
		id, err := submitReport(*submitURL, *submitter, rep)
		if err != nil {
			return fmt.Errorf("submitting report: %w", err)
		}
		fmt.Printf("submitted to %s as id %d\n", *submitURL, id)
		// With the submission stored, the results database can judge this
		// run against the platform's own history; the verdict becomes the
		// regression/trend section of report.txt.
		trend, err := fetchTrendSection(*submitURL)
		if err != nil {
			slog.Warn("fetching regression trend failed", "url", *submitURL, "err", err)
		} else {
			if err := appendReportSection(dir, trend); err != nil {
				return err
			}
			fmt.Print(trend)
		}
	}
	return nil
}

// fetchTrendSection asks the results database for history-aware
// regressions and renders the report.txt trend section.
func fetchTrendSection(baseURL string) (string, error) {
	resp, err := http.Get(strings.TrimSuffix(baseURL, "/") + "/api/v1/regressions")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("results database returned %s", resp.Status)
	}
	var body struct {
		Checked     int                 `json:"checked"`
		Regressions []report.Regression `json:"regressions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	if tbl := report.RegressionTable(body.Regressions); tbl != "" {
		return "\n" + tbl, nil
	}
	return fmt.Sprintf("\n=== regressions (vs trailing submission history) ===\nnone flagged (%d series checked)\n", body.Checked), nil
}

// appendReportSection appends text to an already-written report.txt.
func appendReportSection(dir, text string) error {
	f, err := os.OpenFile(filepath.Join(dir, "report.txt"), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(text); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// statusJSONHandler serves the live campaign progress snapshot.
func statusJSONHandler(tracker *sched.Tracker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tracker.Snapshot())
	})
}

// statusPage is the minimal human view of /status: it polls the JSON
// and renders a progress line plus the per-worker table. No assets, no
// dependencies — one self-contained page.
const statusPage = `<!doctype html>
<html><head><meta charset="utf-8"><title>graphalytics campaign status</title>
<style>
body{font-family:monospace;margin:2em;background:#111;color:#ddd}
table{border-collapse:collapse;margin-top:1em}
td,th{border:1px solid #444;padding:4px 10px;text-align:left}
.bar{background:#333;width:32em;height:1em;display:inline-block}
.fill{background:#4a8;height:100%;display:block}
</style></head>
<body>
<h2>graphalytics campaign</h2>
<div id="line">loading…</div>
<div><span class="bar"><span id="fill" class="fill" style="width:0"></span></span></div>
<table id="workers"><tr><th>worker</th><th>job</th><th>class</th><th>running for</th></tr></table>
<script>
function fmtNs(ns){if(!ns)return"0s";const s=ns/1e9;return s>=60?(s/60).toFixed(1)+"m":s.toFixed(1)+"s"}
async function tick(){
  try{
    const r=await fetch("/status");const s=await r.json();
    const c=s.counts,total=c.total||1,done=c.done+c.failed+c.skipped;
    document.getElementById("line").textContent=
      (s.finished?"finished":"running")+" — "+done+"/"+c.total+" jobs ("+
      c.running+" running, "+c.ready+" ready, "+c.pending+" pending, "+
      c.failed+" failed) · elapsed "+fmtNs(s.elapsed_ns)+" · ETA "+fmtNs(s.eta_ns);
    document.getElementById("fill").style.width=(100*done/total)+"%";
    const t=document.getElementById("workers");
    while(t.rows.length>1)t.deleteRow(1);
    for(const w of s.workers||[]){
      const row=t.insertRow();
      row.insertCell().textContent=w.worker;
      row.insertCell().textContent=w.job_id||"(idle)";
      row.insertCell().textContent=w.class||"";
      row.insertCell().textContent=w.job_id?fmtNs(w.running_for_ns):"";
    }
  }catch(e){document.getElementById("line").textContent="status fetch failed: "+e}
}
tick();setInterval(tick,2000);
</script>
</body></html>
`

// statusPageHandler serves the HTML status page at the listener root.
func statusPageHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(statusPage))
	})
}

// submitReport POSTs the report to a results-database service.
func submitReport(baseURL, submitter string, rep *report.Report) (int64, error) {
	body, err := json.Marshal(resultsdb.Submission{
		Submitter:   submitter,
		Environment: fmt.Sprintf("go/%s %s", runtime.Version(), runtime.GOARCH),
		Report:      rep,
	})
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(strings.TrimSuffix(baseURL, "/")+"/api/v1/submissions", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return 0, fmt.Errorf("results database returned %s", resp.Status)
	}
	var created map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		return 0, err
	}
	return created["id"], nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func buildPlatforms(names []string, props *config.Properties, workers int) ([]platform.Platform, error) {
	var out []platform.Platform
	for _, name := range names {
		mem, err := props.Int64("platform."+name+".memory", 0)
		if err != nil {
			return nil, err
		}
		w64, err := props.Int64("platform."+name+".workers", int64(workers))
		if err != nil {
			return nil, err
		}
		w := int(w64)
		switch name {
		case "pregel":
			out = append(out, graphalytics.NewPregel(graphalytics.PregelOptions{MemoryBudget: mem, Workers: w}))
		case "mapreduce":
			out = append(out, graphalytics.NewMapReduce(graphalytics.MapReduceOptions{Workers: w}))
		case "dataflow":
			out = append(out, graphalytics.NewDataflow(graphalytics.DataflowOptions{MemoryBudget: mem, Parts: w}))
		case "graphdb":
			// Single-threaded by design (record-store fidelity): the
			// workers knob intentionally does not reach it.
			out = append(out, graphalytics.NewGraphDB(graphalytics.GraphDBOptions{MemoryBudget: mem}))
		default:
			return nil, fmt.Errorf("unknown platform %q", name)
		}
	}
	return out, nil
}

// platformSpecs derives the lease-borne construction recipes from the
// same properties buildPlatforms reads, so remote runners build engines
// identical to the ones a local campaign would have used.
func platformSpecs(names []string, props *config.Properties, workers int) (map[string]dist.PlatformSpec, error) {
	specs := make(map[string]dist.PlatformSpec, len(names))
	for _, name := range names {
		mem, err := props.Int64("platform."+name+".memory", 0)
		if err != nil {
			return nil, err
		}
		w64, err := props.Int64("platform."+name+".workers", int64(workers))
		if err != nil {
			return nil, err
		}
		specs[name] = dist.PlatformSpec{Name: name, Memory: mem, Workers: int(w64)}
	}
	return specs, nil
}

// parseAlgorithms resolves workload names (or LDBC aliases) through the
// registry, so a newly registered workload is selectable with no parser
// change.
func parseAlgorithms(names []string) ([]algo.Kind, error) {
	var out []algo.Kind
	for _, n := range names {
		s, err := workload.Parse(n)
		if err != nil {
			return nil, err
		}
		out = append(out, s.Kind)
	}
	return out, nil
}

// buildGraphs materializes the graph specs, timing each build through
// core.Ingest so the report carries the load phase (time + EVPS) of
// every dataset next to its processing times. loadWorkers threads the
// -load-workers parallelism into the file loader and the generators
// (0 = all cores, 1 = the sequential paths).
//
// Generated specs (social, rmat, surrogates) carry a dataset fingerprint
// over their generator identity; with a cache configured, the generated
// graph is stored under that fingerprint and later builds restore it
// instead of regenerating (ingest Source then reads "cache:<spec>"). The
// returned map feeds core.Benchmark.GraphStamps so matrix cells share
// the same dataset identity. File graphs have no generator identity and
// fall back to content hashing inside core.
func buildGraphs(specs []string, seed uint64, weighted bool, loadWorkers int, cache *artifact.Cache) ([]*graph.Graph, []report.IngestStat, map[string]stamp.Fingerprint, error) {
	var out []*graph.Graph
	var ingests []report.IngestStat
	graphStamps := make(map[string]stamp.Fingerprint)
	for _, spec := range specs {
		kind, arg, _ := strings.Cut(spec, ":")
		var build func() (*graph.Graph, error)
		var fp stamp.Fingerprint
		switch kind {
		case "social":
			n, err := strconv.Atoi(arg)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("graph spec %q: %w", spec, err)
			}
			name := fmt.Sprintf("social-%d", n)
			fp = stamp.Dataset("social", datagen.Config{
				Persons: n, Seed: seed, Weighted: weighted, Name: name,
			}.Stamp())
			build = func() (*graph.Graph, error) {
				g, err := graphalytics.GenerateSocialNetworkConfig(graphalytics.DatagenConfig{
					Persons: n, Seed: seed, Weighted: weighted, Workers: loadWorkers,
				})
				if err != nil {
					return nil, err
				}
				g.SetName(name)
				return g, nil
			}
		case "rmat":
			scale, err := strconv.Atoi(arg)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("graph spec %q: %w", spec, err)
			}
			fp = stamp.Dataset("rmat", rmat.Config{
				Scale: scale, Seed: seed, Weighted: weighted,
			}.Stamp())
			build = func() (*graph.Graph, error) {
				return graphalytics.GenerateRMATConfig(graphalytics.RMATConfig{
					Scale: scale, Seed: seed, Weighted: weighted, Workers: loadWorkers,
				})
			}
		case "file":
			build = func() (*graph.Graph, error) {
				return graphalytics.LoadGraphOpts(arg, "", graphalytics.LoadOptions{Workers: loadWorkers})
			}
		case "amazon", "youtube", "livejournal", "patents", "wikipedia":
			div := 0
			if arg != "" {
				d, err := strconv.Atoi(arg)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("graph spec %q: %w", spec, err)
				}
				div = d
			}
			sspec, err := surrogate.Find(kind)
			if err != nil {
				return nil, nil, nil, err
			}
			fp = stamp.Dataset("surrogate", surrogate.Stamp(sspec, surrogate.Options{ScaleDiv: div}))
			build = func() (*graph.Graph, error) { return graphalytics.GenerateSurrogate(kind, div) }
		default:
			return nil, nil, nil, fmt.Errorf("unknown graph spec %q", spec)
		}
		cached := false
		wrapped := func() (*graph.Graph, error) {
			if cache != nil && !fp.IsZero() {
				g, hit, cerr := cache.LoadGraph(fp, loadWorkers)
				if cerr != nil {
					slog.Warn("corrupt cached graph artifact; regenerating", "spec", spec, "err", cerr)
				} else if hit {
					cached = true
					return g, nil
				}
			}
			g, err := build()
			if err != nil {
				return nil, err
			}
			if cache != nil && !fp.IsZero() {
				if serr := cache.StoreGraph(fp, g); serr != nil {
					slog.Warn("storing graph artifact failed", "spec", spec, "err", serr)
				}
			}
			return g, nil
		}
		g, stat, err := core.Ingest(spec, loadWorkers, wrapped)
		if err != nil {
			return nil, nil, nil, err
		}
		if cached {
			stat.Source = "cache:" + spec
		}
		if !fp.IsZero() {
			graphStamps[g.Name()] = fp
		}
		out = append(out, g)
		ingests = append(ingests, stat)
	}
	return out, ingests, graphStamps, nil
}

func writeReport(dir string, rep *report.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ingest := report.IngestTable(rep.Ingests)
	if ingest != "" {
		ingest += "\n"
	}
	f4 := ingest + report.Figure4Table(rep.Results)
	f5 := report.Figure5Table(rep.Results)
	for _, r := range rep.Results {
		// The weighted-workload throughput table rides along when the
		// campaign ran SSSP.
		if r.Algorithm == algo.SSSP {
			f5 += "\n" + report.KTEPSTable(rep.Results, algo.SSSP)
			break
		}
	}
	if res := report.ResourceTable(rep.Results); res != "" {
		f5 += "\n" + res
	}
	if err := os.WriteFile(filepath.Join(dir, "report.txt"), []byte(f4+"\n"+f5), 0o644); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(dir, "results.csv"))
	if err != nil {
		return err
	}
	if err := report.WriteCSV(csv, rep.Results); err != nil {
		csv.Close()
		return err
	}
	if err := csv.Close(); err != nil {
		return err
	}
	js, err := os.Create(filepath.Join(dir, "report.json"))
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(js); err != nil {
		js.Close()
		return err
	}
	if err := js.Close(); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", dir)
	fmt.Println()
	fmt.Print(f4)
	fmt.Println(f5)
	return nil
}
