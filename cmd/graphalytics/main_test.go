package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/config"
	"graphalytics/internal/report"
	"graphalytics/internal/resultsdb"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"a,b,c", 3},
		{" a , b ", 2},
		{"", 0},
		{",,", 0},
	}
	for _, c := range cases {
		if got := splitList(c.in); len(got) != c.want {
			t.Errorf("splitList(%q) = %v", c.in, got)
		}
	}
}

func TestParseAlgorithms(t *testing.T) {
	// Canonical names, case-insensitive, and LDBC aliases all resolve
	// through the workload registry.
	algs, err := parseAlgorithms([]string{"BFS", "conn", "pagerank", "wcc", "sssp"})
	if err != nil {
		t.Fatal(err)
	}
	want := []algo.Kind{algo.BFS, algo.CONN, algo.PR, algo.CONN, algo.SSSP}
	for i, k := range want {
		if algs[i] != k {
			t.Errorf("algs[%d] = %v, want %v", i, algs[i], k)
		}
	}
	if _, err := parseAlgorithms([]string{"nosuchworkload"}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestBuildPlatforms(t *testing.T) {
	props := config.New()
	props.Set("platform.dataflow.memory", "123456")
	plats, err := buildPlatforms([]string{"pregel", "mapreduce", "dataflow", "graphdb"}, props)
	if err != nil {
		t.Fatal(err)
	}
	if len(plats) != 4 {
		t.Fatalf("platforms = %d", len(plats))
	}
	names := map[string]bool{}
	for _, p := range plats {
		names[p.Name()] = true
	}
	for _, want := range []string{"pregel", "mapreduce", "dataflow", "graphdb"} {
		if !names[want] {
			t.Errorf("missing platform %s", want)
		}
	}
	if _, err := buildPlatforms([]string{"spark"}, props); err == nil {
		t.Error("unknown platform should fail")
	}
	props.Set("platform.pregel.memory", "notanumber")
	if _, err := buildPlatforms([]string{"pregel"}, props); err == nil {
		t.Error("bad memory value should fail")
	}
}

func TestBuildGraphs(t *testing.T) {
	graphs, ingests, err := buildGraphs([]string{"social:500", "rmat:9", "amazon:512"}, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 3 {
		t.Fatalf("graphs = %d", len(graphs))
	}
	if graphs[0].NumVertices() != 500 {
		t.Errorf("social vertices = %d", graphs[0].NumVertices())
	}
	if graphs[1].NumVertices() != 512 {
		t.Errorf("rmat vertices = %d", graphs[1].NumVertices())
	}
	// Every dataset's ingest phase is recorded, with its spec as source.
	if len(ingests) != 3 {
		t.Fatalf("ingests = %d", len(ingests))
	}
	for i, in := range ingests {
		if in.Graph != graphs[i].Name() {
			t.Errorf("ingest[%d].Graph = %q, want %q", i, in.Graph, graphs[i].Name())
		}
		if in.Edges != graphs[i].NumEdges() || in.Duration <= 0 || in.EVPS <= 0 {
			t.Errorf("ingest[%d] not populated: %+v", i, in)
		}
	}
	if ingests[1].Source != "rmat:9" {
		t.Errorf("ingest source = %q", ingests[1].Source)
	}
	for _, bad := range []string{"social:x", "rmat:", "unknown:1", "amazon:x"} {
		if _, _, err := buildGraphs([]string{bad}, 1, false, 0); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

func TestBuildGraphsWeighted(t *testing.T) {
	graphs, _, err := buildGraphs([]string{"social:300", "rmat:8"}, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range graphs {
		if !g.Weighted() {
			t.Errorf("%s: -weighted generation produced an unweighted graph", g.Name())
		}
	}
}

func TestBuildGraphsFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.e")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	graphs, _, err := buildGraphs([]string{"file:" + path}, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if graphs[0].NumEdges() != 2 {
		t.Errorf("file graph edges = %d", graphs[0].NumEdges())
	}
	// A weighted .e file loads with weights reachable from the engines.
	wpath := filepath.Join(dir, "tinyw.e")
	if err := os.WriteFile(wpath, []byte("0 1 0.5\n1 2 2.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	graphs, _, err = buildGraphs([]string{"file:" + wpath}, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !graphs[0].Weighted() {
		t.Error("weighted .e file loaded unweighted")
	}
}

func TestWriteReport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	rep := &report.Report{
		Started:  time.Now(),
		Finished: time.Now(),
		Results: []report.RunResult{{
			Platform: "pregel", Graph: "g", Algorithm: algo.BFS,
			Status: report.StatusSuccess, Runtime: time.Second,
		}},
		Ingests: []report.IngestStat{{
			Graph: "g", Source: "social:500", Vertices: 10, Edges: 20,
			Duration: time.Millisecond, EVPS: 20000,
		}},
	}
	if err := writeReport(dir, rep); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"report.txt", "results.csv", "report.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", name)
		}
	}
	txt, _ := os.ReadFile(filepath.Join(dir, "report.txt"))
	if !strings.Contains(string(txt), "BFS") {
		t.Error("report.txt missing algorithm row")
	}
	// The ingest phase renders as its own table ahead of the matrix.
	if !strings.Contains(string(txt), "ingest (graph load)") {
		t.Error("report.txt missing the ingest table")
	}
	js, _ := os.ReadFile(filepath.Join(dir, "report.json"))
	if !strings.Contains(string(js), `"ingests"`) {
		t.Error("report.json missing the ingests field")
	}
}

func TestSubmitReport(t *testing.T) {
	store := resultsdb.NewStore()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()
	rep := &report.Report{
		Started:  time.Now(),
		Finished: time.Now(),
		Results: []report.RunResult{{
			Platform: "pregel", Graph: "g", Algorithm: algo.BFS,
			Status: report.StatusSuccess, Runtime: time.Second,
		}},
	}
	id, err := submitReport(srv.URL+"/", "tester", rep)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("id = %d", id)
	}
	sub, ok := store.Get(id)
	if !ok || sub.Submitter != "tester" {
		t.Fatalf("stored submission: %+v %v", sub, ok)
	}
	// Rejected submission surfaces the HTTP status.
	if _, err := submitReport(srv.URL, "", &report.Report{}); err == nil {
		t.Error("empty report should fail")
	}
}
