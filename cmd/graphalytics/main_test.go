package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"graphalytics"
	"graphalytics/internal/algo"
	"graphalytics/internal/artifact"
	"graphalytics/internal/config"
	"graphalytics/internal/core"
	"graphalytics/internal/platform"
	"graphalytics/internal/report"
	"graphalytics/internal/resultsdb"
	"graphalytics/internal/sched"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"a,b,c", 3},
		{" a , b ", 2},
		{"", 0},
		{",,", 0},
	}
	for _, c := range cases {
		if got := splitList(c.in); len(got) != c.want {
			t.Errorf("splitList(%q) = %v", c.in, got)
		}
	}
}

func TestParseAlgorithms(t *testing.T) {
	// Canonical names, case-insensitive, and LDBC aliases all resolve
	// through the workload registry.
	algs, err := parseAlgorithms([]string{"BFS", "conn", "pagerank", "wcc", "sssp"})
	if err != nil {
		t.Fatal(err)
	}
	want := []algo.Kind{algo.BFS, algo.CONN, algo.PR, algo.CONN, algo.SSSP}
	for i, k := range want {
		if algs[i] != k {
			t.Errorf("algs[%d] = %v, want %v", i, algs[i], k)
		}
	}
	if _, err := parseAlgorithms([]string{"nosuchworkload"}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestBuildPlatforms(t *testing.T) {
	props := config.New()
	props.Set("platform.dataflow.memory", "123456")
	props.Set("platform.pregel.workers", "3")
	plats, err := buildPlatforms([]string{"pregel", "mapreduce", "dataflow", "graphdb"}, props, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plats) != 4 {
		t.Fatalf("platforms = %d", len(plats))
	}
	names := map[string]bool{}
	for _, p := range plats {
		names[p.Name()] = true
	}
	for _, want := range []string{"pregel", "mapreduce", "dataflow", "graphdb"} {
		if !names[want] {
			t.Errorf("missing platform %s", want)
		}
	}
	if _, err := buildPlatforms([]string{"spark"}, props, 0); err == nil {
		t.Error("unknown platform should fail")
	}
	props.Set("platform.pregel.memory", "notanumber")
	if _, err := buildPlatforms([]string{"pregel"}, props, 0); err == nil {
		t.Error("bad memory value should fail")
	}
	props.Set("platform.pregel.memory", "0")
	props.Set("platform.pregel.workers", "notanumber")
	if _, err := buildPlatforms([]string{"pregel"}, props, 0); err == nil {
		t.Error("bad workers value should fail")
	}
}

func TestBuildGraphs(t *testing.T) {
	graphs, ingests, _, err := buildGraphs([]string{"social:500", "rmat:9", "amazon:512"}, 1, false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 3 {
		t.Fatalf("graphs = %d", len(graphs))
	}
	if graphs[0].NumVertices() != 500 {
		t.Errorf("social vertices = %d", graphs[0].NumVertices())
	}
	if graphs[1].NumVertices() != 512 {
		t.Errorf("rmat vertices = %d", graphs[1].NumVertices())
	}
	// Every dataset's ingest phase is recorded, with its spec as source.
	if len(ingests) != 3 {
		t.Fatalf("ingests = %d", len(ingests))
	}
	for i, in := range ingests {
		if in.Graph != graphs[i].Name() {
			t.Errorf("ingest[%d].Graph = %q, want %q", i, in.Graph, graphs[i].Name())
		}
		if in.Edges != graphs[i].NumEdges() || in.Duration <= 0 || in.EVPS <= 0 {
			t.Errorf("ingest[%d] not populated: %+v", i, in)
		}
	}
	if ingests[1].Source != "rmat:9" {
		t.Errorf("ingest source = %q", ingests[1].Source)
	}
	for _, bad := range []string{"social:x", "rmat:", "unknown:1", "amazon:x"} {
		if _, _, _, err := buildGraphs([]string{bad}, 1, false, 0, nil); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

func TestBuildGraphsWeighted(t *testing.T) {
	graphs, _, _, err := buildGraphs([]string{"social:300", "rmat:8"}, 1, true, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range graphs {
		if !g.Weighted() {
			t.Errorf("%s: -weighted generation produced an unweighted graph", g.Name())
		}
	}
}

func TestBuildGraphsFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.e")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	graphs, _, _, err := buildGraphs([]string{"file:" + path}, 1, false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if graphs[0].NumEdges() != 2 {
		t.Errorf("file graph edges = %d", graphs[0].NumEdges())
	}
	// A weighted .e file loads with weights reachable from the engines.
	wpath := filepath.Join(dir, "tinyw.e")
	if err := os.WriteFile(wpath, []byte("0 1 0.5\n1 2 2.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	graphs, _, _, err = buildGraphs([]string{"file:" + wpath}, 1, false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !graphs[0].Weighted() {
		t.Error("weighted .e file loaded unweighted")
	}
}

func TestWriteReport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	rep := &report.Report{
		Started:  time.Now(),
		Finished: time.Now(),
		Results: []report.RunResult{{
			Platform: "pregel", Graph: "g", Algorithm: algo.BFS,
			Status: report.StatusSuccess, Runtime: time.Second,
		}},
		Ingests: []report.IngestStat{{
			Graph: "g", Source: "social:500", Vertices: 10, Edges: 20,
			Duration: time.Millisecond, EVPS: 20000,
		}},
	}
	if err := writeReport(dir, rep); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"report.txt", "results.csv", "report.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", name)
		}
	}
	txt, _ := os.ReadFile(filepath.Join(dir, "report.txt"))
	if !strings.Contains(string(txt), "BFS") {
		t.Error("report.txt missing algorithm row")
	}
	// The ingest phase renders as its own table ahead of the matrix.
	if !strings.Contains(string(txt), "ingest (graph load)") {
		t.Error("report.txt missing the ingest table")
	}
	js, _ := os.ReadFile(filepath.Join(dir, "report.json"))
	if !strings.Contains(string(js), `"ingests"`) {
		t.Error("report.json missing the ingests field")
	}
}

// TestStatusEndpointMidCampaign runs a real (small) campaign with the
// /status listener attached and snapshots it from the Progress callback
// — i.e. while the scheduler is still resolving jobs — asserting the
// endpoint serves valid, populated JSON before the campaign finishes.
func TestStatusEndpointMidCampaign(t *testing.T) {
	graphs, ingests, _, err := buildGraphs([]string{"social:300"}, 1, false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	tracker := sched.NewTracker()
	srv := httptest.NewServer(statusJSONHandler(tracker))
	defer srv.Close()

	var (
		mu       sync.Mutex
		sampled  bool
		sampleIn sched.Snapshot
	)
	bench := &core.Benchmark{
		Platforms:  []platform.Platform{graphalytics.NewPregel(graphalytics.PregelOptions{})},
		Graphs:     graphs,
		Algorithms: []algo.Kind{algo.BFS, algo.CONN, algo.STATS},
		Params:     algo.Params{Seed: 1},
		Timeout:    time.Minute,
		Ingests:    ingests,
		Tracker:    tracker,
		Progress: func(report.RunResult) {
			mu.Lock()
			defer mu.Unlock()
			if sampled {
				return
			}
			resp, err := http.Get(srv.URL + "/status")
			if err != nil {
				t.Errorf("GET /status: %v", err)
				return
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q", ct)
			}
			if err := json.NewDecoder(resp.Body).Decode(&sampleIn); err != nil {
				t.Errorf("decoding /status: %v", err)
				return
			}
			sampled = true
		},
	}
	if _, err := bench.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if !sampled {
		t.Fatal("Progress never sampled /status")
	}
	s := sampleIn
	if s.Counts.Total == 0 {
		t.Fatalf("mid-campaign snapshot empty: %+v", s)
	}
	if s.Finished {
		t.Error("snapshot taken from Progress claims the campaign finished")
	}
	// Progress fires from inside a job, before the scheduler resolves it,
	// so that job still counts as running in the snapshot.
	if s.Counts.Running == 0 {
		t.Errorf("no running jobs in mid-campaign snapshot: %+v", s.Counts)
	}
	if sum := s.Counts.Pending + s.Counts.Ready + s.Counts.Running +
		s.Counts.Done + s.Counts.Failed + s.Counts.Skipped; sum != s.Counts.Total {
		t.Errorf("counts do not sum to total: %+v", s.Counts)
	}
	if s.Started.IsZero() || s.Elapsed <= 0 {
		t.Errorf("timing fields unpopulated: started=%v elapsed=%v", s.Started, s.Elapsed)
	}

	// After Run returns, the tracker reports completion.
	final := tracker.Snapshot()
	if !final.Finished {
		t.Error("tracker not finished after Run returned")
	}
	if got := final.Counts.Done + final.Counts.Failed + final.Counts.Skipped; got != final.Counts.Total {
		t.Errorf("final counts unresolved: %+v", final.Counts)
	}
}

// TestFetchTrendSection exercises the post-submit regression fetch and
// the report.txt append.
func TestFetchTrendSection(t *testing.T) {
	store := resultsdb.NewStore()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	mk := func(kteps float64) *report.Report {
		return &report.Report{
			Started: time.Now(), Finished: time.Now(),
			Results: []report.RunResult{{
				Platform: "pregel", Graph: "g", Algorithm: algo.BFS,
				Status: report.StatusSuccess, Runtime: time.Second, KTEPS: kteps,
			}},
		}
	}
	// Quiet history → "none flagged" line.
	for _, v := range []float64{1000, 1010} {
		if _, err := submitReport(srv.URL, "t", mk(v)); err != nil {
			t.Fatal(err)
		}
	}
	trend, err := fetchTrendSection(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trend, "none flagged") {
		t.Fatalf("quiet trend = %q", trend)
	}
	// A halved submission → rendered regression table naming the platform.
	for _, v := range []float64{990, 400} {
		if _, err := submitReport(srv.URL, "t", mk(v)); err != nil {
			t.Fatal(err)
		}
	}
	trend, err = fetchTrendSection(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trend, "pregel") || !strings.Contains(trend, "regressions") {
		t.Fatalf("regressed trend = %q", trend)
	}

	// The section lands at the end of report.txt.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "report.txt"), []byte("base\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendReportSection(dir, trend); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(txt), "base\n") || !strings.Contains(string(txt), "pregel") {
		t.Fatalf("report.txt = %q", txt)
	}
}

func TestSubmitReport(t *testing.T) {
	store := resultsdb.NewStore()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()
	rep := &report.Report{
		Started:  time.Now(),
		Finished: time.Now(),
		Results: []report.RunResult{{
			Platform: "pregel", Graph: "g", Algorithm: algo.BFS,
			Status: report.StatusSuccess, Runtime: time.Second,
		}},
	}
	id, err := submitReport(srv.URL+"/", "tester", rep)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("id = %d", id)
	}
	sub, ok := store.Get(id)
	if !ok || sub.Submitter != "tester" {
		t.Fatalf("stored submission: %+v %v", sub, ok)
	}
	// Rejected submission surfaces the HTTP status.
	if _, err := submitReport(srv.URL, "", &report.Report{}); err == nil {
		t.Error("empty report should fail")
	}
}

func TestBuildGraphsArtifactCache(t *testing.T) {
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache.Verify = true
	specs := []string{"social:300", "rmat:8"}

	graphs1, ingests1, stamps1, err := buildGraphs(specs, 1, false, 0, cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, ing := range ingests1 {
		if strings.HasPrefix(ing.Source, "cache:") {
			t.Errorf("cold cache reported a hit: %s", ing.Source)
		}
	}
	for _, g := range graphs1 {
		if fp, ok := stamps1[g.Name()]; !ok || fp.IsZero() {
			t.Errorf("%s: no dataset fingerprint", g.Name())
		}
	}

	graphs2, ingests2, stamps2, err := buildGraphs(specs, 1, false, 0, cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, ing := range ingests2 {
		if !strings.HasPrefix(ing.Source, "cache:") {
			t.Errorf("warm cache regenerated %s (source %s)", ing.Graph, ing.Source)
		}
	}
	for i := range graphs1 {
		if graphs1[i].Name() != graphs2[i].Name() ||
			graphs1[i].NumVertices() != graphs2[i].NumVertices() ||
			graphs1[i].NumEdges() != graphs2[i].NumEdges() {
			t.Errorf("cached graph %s differs from generated", graphs1[i].Name())
		}
		if stamps1[graphs1[i].Name()] != stamps2[graphs2[i].Name()] {
			t.Errorf("%s: fingerprint changed across runs", graphs1[i].Name())
		}
	}

	// A different seed must miss: the fingerprint names the content.
	_, ingests3, _, err := buildGraphs(specs, 2, false, 0, cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, ing := range ingests3 {
		if strings.HasPrefix(ing.Source, "cache:") {
			t.Errorf("changed seed hit the cache: %s", ing.Source)
		}
	}
}
