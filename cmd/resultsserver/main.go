// Command resultsserver hosts the Graphalytics results database
// (Figure 2: "a database for Results that is hosted by us online and
// accepts results submissions from Graphalytics users").
//
// Usage:
//
//	resultsserver -addr :8080 -store results.json
//
// The benchmark driver submits with:
//
//	graphalytics -submit http://host:8080 ...
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"

	"graphalytics/internal/resultsdb"
	"graphalytics/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resultsserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		store     = flag.String("store", "results.json", "persistence file (empty = memory only)")
		logFormat = flag.String("log-format", "text", "structured log format: text or json")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	flag.Parse()
	if err := telemetry.SetupLogging(nil, *logFormat, *logLevel); err != nil {
		return err
	}

	var db *resultsdb.Store
	var err error
	if *store == "" {
		db = resultsdb.NewStore()
	} else {
		db, err = resultsdb.OpenStore(*store)
		if err != nil {
			return err
		}
	}
	requests := telemetry.Metrics.Counter("resultsserver_requests_total", "HTTP requests served")
	api := db.Handler()
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Metrics.Handler())
	mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		api.ServeHTTP(w, r)
	}))
	slog.Info("results database listening", "addr", *addr, "store", storeDesc(*store))
	return http.ListenAndServe(*addr, mux)
}

func storeDesc(path string) string {
	if path == "" {
		return "memory"
	}
	return path
}
