// Command quality produces the §3.5 code-quality report over a Go
// source tree: per-package complexity, comment density, and static
// bug-pattern findings — "the code for the reference implementations is
// accompanied by code quality reports".
//
// Usage:
//
//	quality              # analyze the current directory
//	quality -dir ./src -worst 10 -issues
package main

import (
	"flag"
	"fmt"
	"os"

	"graphalytics/internal/codequality"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quality:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir    = flag.String("dir", ".", "source tree to analyze")
		worst  = flag.Int("worst", 10, "show the N most complex functions")
		issues = flag.Bool("issues", true, "list static-analysis findings")
	)
	flag.Parse()

	rep, err := codequality.AnalyzeDir(*dir)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())

	if *worst > 0 {
		fmt.Printf("\nmost complex functions:\n")
		for _, f := range rep.WorstFunctions(*worst) {
			fmt.Printf("  cplx %3d  nest %d  %4d lines  %s:%d  %s\n",
				f.Complexity, f.MaxNesting, f.Lines, f.File, f.Line, f.Name)
		}
	}
	if *issues {
		all := rep.AllIssues()
		fmt.Printf("\nstatic-analysis findings: %d\n", len(all))
		for _, is := range all {
			fmt.Printf("  %s:%d [%s] %s\n", is.File, is.Line, is.Rule, is.Message)
		}
	}
	return nil
}
