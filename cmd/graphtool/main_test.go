package main

import (
	"strings"
	"testing"

	"graphalytics/internal/gen/datagen"
)

func TestCharacterizeOutput(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 500, Seed: 1, Name: "tool-test"})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := characterizeTo(&sb, g, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"tool-test", "nodes", "edges", "global CC", "assortativity"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "degree-distribution fits") {
		t.Error("fits printed without -fit")
	}
}

func TestCharacterizeWithFits(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := characterizeTo(&sb, g, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"degree-distribution fits", "zeta", "geometric", "weibull", "poisson", "KS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
