// Command graphtool characterizes graphs the way Table 1 of the paper
// does (vertex/edge counts, clustering coefficients, assortativity) and
// fits the §2.2 degree-distribution models (Zeta, Geometric, Weibull,
// Poisson) to the observed degrees.
//
// Usage:
//
//	graphtool -graph social.e                 # characterize a file
//	graphtool -surrogate patents -fit         # characterize + fit a surrogate
//	graphtool -table1                         # print all five surrogate rows
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"graphalytics/internal/gen/surrogate"
	"graphalytics/internal/graph"
	"graphalytics/internal/graph/gmetrics"
	"graphalytics/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphtool:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath = flag.String("graph", "", "edge list file (.e) to characterize")
		vertsPath = flag.String("vertices", "", "optional vertex file (.v)")
		directed  = flag.Bool("directed", false, "treat edges as directed")
		loadWork  = flag.Int("load-workers", 0, "ingest workers for -graph (0 = all cores, 1 = sequential)")
		surrName  = flag.String("surrogate", "", "characterize a Table 1 surrogate (amazon, youtube, ...)")
		scaleDiv  = flag.Int("scale-div", 0, "surrogate downscale divisor (0 = default)")
		table1    = flag.Bool("table1", false, "print all five Table 1 surrogate rows")
		fit       = flag.Bool("fit", false, "fit degree-distribution models")
	)
	flag.Parse()

	switch {
	case *table1:
		fmt.Printf("%-12s %10s %12s %8s %8s %8s\n", "Dataset", "Nodes", "Edges", "Gl. CC", "Avg. CC", "Asrt.")
		for _, spec := range surrogate.Table1 {
			g, err := surrogate.Generate(spec, surrogate.Options{ScaleDiv: *scaleDiv, Rewire: true})
			if err != nil {
				return err
			}
			c := gmetrics.Measure(g)
			fmt.Printf("%-12s %10d %12d %8.4f %8.4f %8.4f\n",
				c.Name, c.Vertices, c.Edges, c.GlobalCC, c.AvgCC, c.Assortativity)
		}
		return nil
	case *surrName != "":
		spec, err := surrogate.Find(*surrName)
		if err != nil {
			return err
		}
		g, err := surrogate.Generate(spec, surrogate.Options{ScaleDiv: *scaleDiv, Rewire: true})
		if err != nil {
			return err
		}
		return characterize(g, *fit)
	case *graphPath != "":
		g, err := graph.LoadEdgeList(*graphPath, *vertsPath, graph.LoadOptions{Directed: *directed, Workers: *loadWork})
		if err != nil {
			return err
		}
		return characterize(g, *fit)
	default:
		flag.Usage()
		return fmt.Errorf("one of -graph, -surrogate, -table1 is required")
	}
}

func characterize(g *graph.Graph, fit bool) error {
	return characterizeTo(os.Stdout, g, fit)
}

func characterizeTo(w io.Writer, g *graph.Graph, fit bool) error {
	c := gmetrics.Measure(g)
	fmt.Fprintf(w, "%s\n", g)
	fmt.Fprintf(w, "  nodes          %d\n", c.Vertices)
	fmt.Fprintf(w, "  edges          %d\n", c.Edges)
	fmt.Fprintf(w, "  global CC      %.4f\n", c.GlobalCC)
	fmt.Fprintf(w, "  average CC     %.4f\n", c.AvgCC)
	fmt.Fprintf(w, "  assortativity  %.4f\n", c.Assortativity)

	if !fit {
		return nil
	}
	sample, err := stats.NewSample(gmetrics.Degrees(g))
	if err != nil {
		return err
	}
	d := sample.Describe()
	fmt.Fprintf(w, "  degrees        mean %.2f median %.1f max %d\n", d.Mean, d.Median, d.Max)
	fmt.Fprintln(w, "  degree-distribution fits (best first):")
	for _, f := range sample.FitAll() {
		fmt.Fprintf(w, "    %-10s %-22s logL %12.1f  KS %.4f  AIC %12.1f\n",
			f.Model.Name(), f.Model.Params(), f.LogLikelihood, f.KS, f.AIC)
	}
	return nil
}
