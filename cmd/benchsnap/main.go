// Command benchsnap runs the repo's benchmark suite (or parses an
// existing `go test -bench` log) and writes machine-readable snapshots:
// BENCH_ingest.json for the graph-ingest benchmarks and BENCH_core.json
// for everything else. The snapshots give CI and across-commit tooling
// (cmd/benchdiff, internal/perfhist) a stable ns/op record without
// scraping bench output ad hoc. Runs always pass -benchmem, so every
// entry carries B/op and allocs/op next to any b.ReportMetric units,
// and -count N keeps all N samples per benchmark so the diff side can
// reason about variance instead of trusting single points.
//
// Usage:
//
//	benchsnap                         # run the suite, write BENCH_*.json
//	benchsnap -count 3                # 3 samples per benchmark (variance)
//	benchsnap -bench Figure4 -out .   # subset
//	go test -bench=. -benchtime=1x -run '^$' . | benchsnap -input -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"graphalytics/internal/perfhist"
)

// ingestPrefixes name the benchmarks that exercise the ingest pipeline
// (file parse, interning, CSR build, platform ETL); they snapshot to
// BENCH_ingest.json, the rest to BENCH_core.json.
var ingestPrefixes = []string{
	"BenchmarkLoadEdgeList",
	"BenchmarkBuildCSR",
	"BenchmarkETLTimes",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir    = flag.String("out", ".", "directory to write BENCH_core.json and BENCH_ingest.json to")
		benchRe   = flag.String("bench", ".", "go test -bench regexp")
		benchTime = flag.String("benchtime", "1x", "go test -benchtime value")
		count     = flag.Int("count", 1, "go test -count: samples per benchmark (≥3 gives benchdiff variance to reason about)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		commit    = flag.String("commit", "", "commit id recorded in the snapshots (default: git rev-parse HEAD, best-effort)")
		input     = flag.String("input", "", "parse an existing bench log instead of running go test ('-' = stdin)")
	)
	flag.Parse()
	if *count < 1 {
		*count = 1
	}

	var r io.Reader
	switch *input {
	case "":
		cmd := exec.Command("go", "test",
			"-bench="+*benchRe, "-benchtime="+*benchTime,
			fmt.Sprintf("-count=%d", *count), "-benchmem", "-run", "^$", *pkg)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		defer cmd.Wait()
		r = io.TeeReader(out, os.Stdout)
	case "-":
		r = os.Stdin
	default:
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	entries, err := perfhist.Parse(r)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark result lines found (did the bench run fail?)")
	}

	rev := *commit
	if rev == "" {
		rev = gitHead()
	}
	core, ingest := split(entries)
	if err := write(filepath.Join(*outDir, "BENCH_core.json"), "core", rev, *count, core); err != nil {
		return err
	}
	if err := write(filepath.Join(*outDir, "BENCH_ingest.json"), "ingest", rev, *count, ingest); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchsnap: %d core + %d ingest benchmark samples (count=%d) -> %s\n",
		len(core), len(ingest), *count, *outDir)
	return nil
}

// gitHead best-effort resolves the current commit for the snapshot
// header; a snapshot outside a git checkout just omits it.
func gitHead() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// split partitions entries into the core and ingest groups.
func split(entries []perfhist.Entry) (core, ingest []perfhist.Entry) {
	for _, e := range entries {
		isIngest := false
		for _, p := range ingestPrefixes {
			if strings.HasPrefix(e.Name, p) {
				isIngest = true
				break
			}
		}
		if isIngest {
			ingest = append(ingest, e)
		} else {
			core = append(core, e)
		}
	}
	return core, ingest
}

func write(path, group, commit string, count int, entries []perfhist.Entry) error {
	snap := perfhist.Snapshot{
		Group:      group,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Commit:     commit,
		Count:      count,
		Benchmarks: entries,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
