// Command benchsnap runs the repo's benchmark suite (or parses an
// existing `go test -bench` log) and writes machine-readable snapshots:
// BENCH_ingest.json for the graph-ingest benchmarks and BENCH_core.json
// for everything else. The snapshots give CI and across-commit tooling
// a stable ns/op record without scraping bench output ad hoc.
//
// Usage:
//
//	benchsnap                         # run the suite, write BENCH_*.json
//	benchsnap -bench Figure4 -out .   # subset
//	go test -bench=. -benchtime=1x -run '^$' . | benchsnap -input -
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds the remaining per-op columns (B/op, allocs/op, and
	// any b.ReportMetric units) keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one BENCH_*.json file.
type Snapshot struct {
	Group      string  `json:"group"` // "core" or "ingest"
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	Generated  string  `json:"generated"` // RFC 3339
	Benchmarks []Entry `json:"benchmarks"`
}

// ingestPrefixes name the benchmarks that exercise the ingest pipeline
// (file parse, interning, CSR build, platform ETL); they snapshot to
// BENCH_ingest.json, the rest to BENCH_core.json.
var ingestPrefixes = []string{
	"BenchmarkLoadEdgeList",
	"BenchmarkBuildCSR",
	"BenchmarkETLTimes",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir    = flag.String("out", ".", "directory to write BENCH_core.json and BENCH_ingest.json to")
		benchRe   = flag.String("bench", ".", "go test -bench regexp")
		benchTime = flag.String("benchtime", "1x", "go test -benchtime value")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		input     = flag.String("input", "", "parse an existing bench log instead of running go test ('-' = stdin)")
	)
	flag.Parse()

	var r io.Reader
	switch *input {
	case "":
		cmd := exec.Command("go", "test", "-bench="+*benchRe, "-benchtime="+*benchTime, "-run", "^$", *pkg)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		defer cmd.Wait()
		r = io.TeeReader(out, os.Stdout)
	case "-":
		r = os.Stdin
	default:
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	entries, err := Parse(r)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark result lines found (did the bench run fail?)")
	}

	core, ingest := split(entries)
	if err := write(filepath.Join(*outDir, "BENCH_core.json"), "core", core); err != nil {
		return err
	}
	if err := write(filepath.Join(*outDir, "BENCH_ingest.json"), "ingest", ingest); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchsnap: %d core + %d ingest benchmarks -> %s\n",
		len(core), len(ingest), *outDir)
	return nil
}

// benchLine matches `BenchmarkName-8   100   123456 ns/op   extra...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// Parse extracts benchmark entries from go test -bench output.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := Entry{Name: m[1], Iterations: iters, NsPerOp: ns}
		// The tail alternates "value unit" pairs (B/op, allocs/op,
		// b.ReportMetric units).
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[fields[i+1]] = v
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// split partitions entries into the core and ingest groups.
func split(entries []Entry) (core, ingest []Entry) {
	for _, e := range entries {
		isIngest := false
		for _, p := range ingestPrefixes {
			if strings.HasPrefix(e.Name, p) {
				isIngest = true
				break
			}
		}
		if isIngest {
			ingest = append(ingest, e)
		} else {
			core = append(core, e)
		}
	}
	return core, ingest
}

func write(path, group string, entries []Entry) error {
	snap := Snapshot{
		Group:      group,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: entries,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
