package main

import (
	"strings"
	"testing"

	"graphalytics/internal/perfhist"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: graphalytics
BenchmarkPageRankHotLoop/social-5000-8         	     100	  123456 ns/op	  2048 B/op	      12 allocs/op
BenchmarkPageRankHotLoop/social-5000-8         	     100	  125000 ns/op	  2048 B/op	      12 allocs/op
BenchmarkLoadEdgeList/parallel-8               	       1	 9876543 ns/op	 5000000 edges/s
BenchmarkBuildCSR-8                            	       2	  456789.5 ns/op
BenchmarkETLTimes/pregel-8                     	       1	  111222 ns/op
not a bench line
PASS
`

func TestParse(t *testing.T) {
	entries, err := perfhist.Parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("got %d entries, want 5 (repeated -count samples kept): %+v", len(entries), entries)
	}
	e := entries[0]
	if e.Name != "BenchmarkPageRankHotLoop/social-5000" || e.Iterations != 100 || e.NsPerOp != 123456 {
		t.Fatalf("first entry: %+v", e)
	}
	if e.Metrics["B/op"] != 2048 || e.Metrics["allocs/op"] != 12 {
		t.Fatalf("metrics: %v", e.Metrics)
	}
	if entries[2].Metrics["edges/s"] != 5000000 {
		t.Fatalf("custom metric: %v", entries[2].Metrics)
	}
	if entries[3].NsPerOp != 456789.5 {
		t.Fatalf("fractional ns/op: %v", entries[3].NsPerOp)
	}
}

func TestSplit(t *testing.T) {
	entries, err := perfhist.Parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	core, ingest := split(entries)
	if len(core) != 2 || len(ingest) != 3 {
		t.Fatalf("core=%d ingest=%d, want 2/3", len(core), len(ingest))
	}
	if core[0].Name != "BenchmarkPageRankHotLoop/social-5000" {
		t.Fatalf("core: %+v", core)
	}
}

func TestParseEmptyInputYieldsNothing(t *testing.T) {
	entries, err := perfhist.Parse(strings.NewReader("PASS\nok  \tgraphalytics\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("got %d entries from benchless log", len(entries))
	}
}
