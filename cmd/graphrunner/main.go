// Command graphrunner is the worker side of a distributed graphalytics
// campaign: it connects to a manager started with
// `graphalytics -serve-campaign <addr>`, announces which platforms it
// can run and how many cells it accepts concurrently, and then executes
// leased matrix cells with the same kernels, monitor, validator, and
// content-addressed caches a local campaign uses. Results stream back
// to the manager, which collates them into the single campaign report.
//
// Usage:
//
//	graphrunner -connect host:7113 [-slots 2] [-platforms pregel,graphdb]
//
// The runner keeps a local artifact cache (-cache-dir, by default a
// fresh temporary directory): graphs and ETL blobs fetched from the
// manager are stored under their content fingerprint, so repeated
// leases — and repeated campaigns against a persistent cache — skip
// the transfer and the transformation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphalytics/internal/artifact"
	"graphalytics/internal/dist"
	"graphalytics/internal/stamp"
	"graphalytics/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphrunner:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		connect   = flag.String("connect", "", "manager address to connect to (required, e.g. host:7113)")
		name      = flag.String("name", "", "runner name shown in manager logs (default: the local address)")
		slots     = flag.Int("slots", 1, "concurrent leases this runner accepts")
		platforms = flag.String("platforms", "", "comma-separated platforms this runner offers (default: all)")
		cacheDir  = flag.String("cache-dir", "", "local artifact cache directory: fetched graphs and ETL blobs are stored under their content fingerprint (default: a fresh temporary directory)")
		retryFor  = flag.Duration("retry-for", 30*time.Second, "keep retrying the initial connection for this long (lets runners start before the manager)")
		logFormat = flag.String("log-format", "text", "structured log format: text or json")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	flag.Parse()
	if err := telemetry.SetupLogging(nil, *logFormat, *logLevel); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("-connect is required (the manager's -serve-campaign address)")
	}

	dir := *cacheDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "graphrunner-cache-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	cache, err := artifact.Open(dir)
	if err != nil {
		return err
	}
	stamps, err := stamp.OpenStore(cache.StampStorePath())
	if err != nil {
		return err
	}
	defer stamps.Close()

	var platformList []string
	if *platforms != "" {
		for _, p := range strings.Split(*platforms, ",") {
			if p = strings.TrimSpace(p); p != "" {
				platformList = append(platformList, p)
			}
		}
	}

	opts := dist.RunnerOptions{
		Name:      *name,
		Slots:     *slots,
		Platforms: platformList,
		Cache:     cache,
		Stamps:    stamps,
	}

	// Retry the dial inside the window: operators (and CI) routinely
	// start runners and manager in either order.
	var runner *dist.Runner
	deadline := time.Now().Add(*retryFor)
	for {
		runner, err = dist.Connect(*connect, opts)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(500 * time.Millisecond)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	return runner.Run(ctx)
}
