package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphalytics/internal/perfhist"
)

// writeSnap writes a snapshot fixture and returns its path.
func writeSnap(t *testing.T, dir, name string, s perfhist.Snapshot) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fixturePair(t *testing.T) (oldPath, newPath string) {
	dir := t.TempDir()
	oldPath = writeSnap(t, dir, "old.json", perfhist.Snapshot{
		Group: "core",
		Benchmarks: []perfhist.Entry{
			{Name: "BenchmarkPageRankHotLoop", Iterations: 10, NsPerOp: 5e7},
			{Name: "BenchmarkBFSHotLoop", Iterations: 10, NsPerOp: 2e7},
		},
	})
	newPath = writeSnap(t, dir, "new.json", perfhist.Snapshot{
		Group: "core",
		Benchmarks: []perfhist.Entry{
			// Injected 2× slowdown.
			{Name: "BenchmarkPageRankHotLoop", Iterations: 10, NsPerOp: 1e8},
			{Name: "BenchmarkBFSHotLoop", Iterations: 10, NsPerOp: 2e7},
		},
	})
	return oldPath, newPath
}

func TestInjectedSlowdownExitsNonZeroAndNamesBenchmark(t *testing.T) {
	oldPath, newPath := fixturePair(t)
	var out strings.Builder
	code, err := run(&out, []string{oldPath, newPath})
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 for a 2x slowdown", code)
	}
	md := out.String()
	if !strings.Contains(md, "BenchmarkPageRankHotLoop") {
		t.Fatalf("markdown does not name the regressed benchmark:\n%s", md)
	}
	if !strings.Contains(md, "regressed") {
		t.Fatalf("markdown missing regression marker:\n%s", md)
	}
	if strings.Contains(md, "| 🔴 regressed | `BenchmarkBFSHotLoop`") {
		t.Fatalf("flat benchmark flagged:\n%s", md)
	}
}

func TestIdenticalSnapshotsExitZero(t *testing.T) {
	oldPath, _ := fixturePair(t)
	var out strings.Builder
	code, err := run(&out, []string{oldPath, oldPath})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 for identical snapshots\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "No significant changes.") {
		t.Fatalf("markdown:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	oldPath, newPath := fixturePair(t)
	var out strings.Builder
	code, err := run(&out, []string{"-format", "json", oldPath, newPath})
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d", code)
	}
	var rep struct {
		Summary map[string]int   `json:"summary"`
		Deltas  []perfhist.Delta `json:"deltas"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if rep.Summary["regressed"] != 1 || rep.Summary["unchanged"] != 1 {
		t.Fatalf("summary: %+v", rep.Summary)
	}
	if rep.Deltas[0].Name != "BenchmarkPageRankHotLoop" || rep.Deltas[0].Verdict != perfhist.Regressed {
		t.Fatalf("regressions sort first: %+v", rep.Deltas)
	}
}

func TestFailOnNone(t *testing.T) {
	oldPath, newPath := fixturePair(t)
	var out strings.Builder
	code, err := run(&out, []string{"-fail-on", "none", oldPath, newPath})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d with -fail-on none", code)
	}
}

func TestHistoryAppend(t *testing.T) {
	oldPath, newPath := fixturePair(t)
	hist := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	var out strings.Builder
	if _, err := run(&out, []string{"-fail-on", "none", "-history", hist, "-commit", "abc123", oldPath, newPath}); err != nil {
		t.Fatal(err)
	}
	entries, err := perfhist.ReadHistory(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Commit != "abc123" || len(entries[0].Stats) != 2 {
		t.Fatalf("history: %+v", entries)
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if code, err := run(&out, []string{"only-one-arg"}); err == nil || code != 2 {
		t.Fatalf("missing arg: code=%d err=%v", code, err)
	}
	if code, err := run(&out, []string{"-format", "yaml", "a", "b"}); err == nil || code != 2 {
		t.Fatalf("bad format: code=%d err=%v", code, err)
	}
	if code, err := run(&out, []string{filepath.Join(t.TempDir(), "missing.json"), "b"}); err == nil || code != 2 {
		t.Fatalf("missing file: code=%d err=%v", code, err)
	}
}
