// Command benchdiff compares two benchsnap snapshots (BENCH_*.json)
// with noise-aware thresholds and renders the verdicts as markdown or
// JSON — the CI gate that turns the bench trajectory into a decision
// instead of prose. It exits 0 when nothing regressed, 1 when at least
// one benchmark regressed beyond threshold, and 2 on usage/IO errors,
// so a pipeline can gate (or warn) on perf directly.
//
// Usage:
//
//	benchdiff OLD.json NEW.json                  # markdown, exit 1 on regression
//	benchdiff -format json OLD.json NEW.json
//	benchdiff -threshold 0.15 -min-effect 100us OLD.json NEW.json
//	benchdiff -history BENCH_history.jsonl -commit $(git rev-parse HEAD) OLD.json NEW.json
//
// With -history the NEW snapshot's aggregate is appended to the
// append-only JSONL trend file keyed by commit (one line per commit and
// group), giving per-benchmark trend lines across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"graphalytics/internal/perfhist"
)

func main() {
	code, err := run(os.Stdout, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the diff and returns the process exit code (0 = clean,
// 1 = regression under -fail-on).
func run(w io.Writer, args []string) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		format    = fs.String("format", "markdown", "output format: markdown or json")
		threshold = fs.Float64("threshold", 0.10, "relative ns/op delta considered significant")
		minEffect = fs.Duration("min-effect", 50*time.Microsecond, "absolute per-op delta floor; smaller deltas are never flagged")
		sigmas    = fs.Float64("sigmas", 3, "noise widening: threshold grows to k·σ_rel when multi-sample variance is present")
		failOn    = fs.String("fail-on", "regressed", "exit non-zero when this verdict appears: regressed or none")
		history   = fs.String("history", "", "append the NEW snapshot's aggregate to this BENCH_history.jsonl trend file")
		commit    = fs.String("commit", "", "commit key for -history (defaults to the snapshot's own commit field)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 2 {
		return 2, fmt.Errorf("usage: benchdiff [flags] OLD.json NEW.json")
	}
	if *failOn != "regressed" && *failOn != "none" {
		return 2, fmt.Errorf("-fail-on must be regressed or none, got %q", *failOn)
	}

	old, err := perfhist.ReadSnapshot(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	cur, err := perfhist.ReadSnapshot(fs.Arg(1))
	if err != nil {
		return 2, err
	}

	deltas := perfhist.Compare(old, cur, perfhist.Options{
		Threshold:   *threshold,
		MinEffectNs: float64(minEffect.Nanoseconds()),
		NoiseSigmas: *sigmas,
	})

	switch *format {
	case "markdown":
		writeMarkdown(w, fs.Arg(0), fs.Arg(1), deltas)
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diffReport{
			Old: fs.Arg(0), New: fs.Arg(1),
			Summary: perfhist.Summary(deltas), Deltas: deltas,
		}); err != nil {
			return 2, err
		}
	default:
		return 2, fmt.Errorf("unknown -format %q (markdown or json)", *format)
	}

	if *history != "" {
		e := perfhist.HistoryFromSnapshot(cur)
		if *commit != "" {
			e.Commit = *commit
		}
		if err := perfhist.AppendHistory(*history, e); err != nil {
			return 2, fmt.Errorf("appending history: %w", err)
		}
	}

	if *failOn == "regressed" && perfhist.Summary(deltas)[perfhist.Regressed] > 0 {
		return 1, nil
	}
	return 0, nil
}

// diffReport is the -format json document.
type diffReport struct {
	Old     string                   `json:"old"`
	New     string                   `json:"new"`
	Summary map[perfhist.Verdict]int `json:"summary"`
	Deltas  []perfhist.Delta         `json:"deltas"`
}

// writeMarkdown renders the diff as a GitHub-flavoured markdown table:
// the significant verdicts in full, unchanged collapsed to a count.
func writeMarkdown(w io.Writer, oldPath, newPath string, deltas []perfhist.Delta) {
	sum := perfhist.Summary(deltas)
	fmt.Fprintf(w, "## Benchmark diff: `%s` → `%s`\n\n", oldPath, newPath)
	fmt.Fprintf(w, "**%d regressed · %d improved · %d new · %d removed · %d unchanged**\n\n",
		sum[perfhist.Regressed], sum[perfhist.Improved], sum[perfhist.New],
		sum[perfhist.Removed], sum[perfhist.Unchanged])

	significant := 0
	for _, d := range deltas {
		if d.Verdict != perfhist.Unchanged {
			significant++
		}
	}
	if significant == 0 {
		fmt.Fprintln(w, "No significant changes.")
		return
	}

	fmt.Fprintln(w, "| verdict | benchmark | old | new | Δ | threshold |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|---:|")
	for _, d := range deltas {
		if d.Verdict == perfhist.Unchanged {
			continue
		}
		delta := "-"
		if d.OldMean > 0 && d.NewMean > 0 {
			delta = fmt.Sprintf("%+.1f%%", d.RelDelta()*100)
		}
		thr := "-"
		if d.Threshold > 0 {
			thr = fmt.Sprintf("%.0f%%", d.Threshold*100)
		}
		fmt.Fprintf(w, "| %s | `%s` | %s | %s | %s | %s |\n",
			marker(d.Verdict), d.Name,
			perfhist.FormatNs(d.OldMean), perfhist.FormatNs(d.NewMean), delta, thr)
	}
}

func marker(v perfhist.Verdict) string {
	switch v {
	case perfhist.Regressed:
		return "🔴 regressed"
	case perfhist.Improved:
		return "🟢 improved"
	case perfhist.New:
		return "➕ new"
	case perfhist.Removed:
		return "➖ removed"
	}
	return string(v)
}
