// Package graphalytics is a from-scratch Go reproduction of
// "Graphalytics: A Big Data Benchmark for Graph-Processing Platforms"
// (Capotă, Hegeman, Iosup, Prat-Pérez, Erling, Boncz — 2015).
//
// It bundles, behind one facade:
//
//   - the benchmark harness (Benchmark Core, Output Validator, System
//     Monitor, Report Generator) of Figure 2;
//   - the five workload algorithms of §3.2 (STATS, BFS, CONN, CD, EVO)
//     with sequential reference implementations;
//   - four platform engines mirroring the paper's systems under test:
//     a Pregel/BSP engine (Giraph), a MapReduce engine (Hadoop), a
//     dataflow engine (GraphX), and a record-store graph database
//     (Neo4j) — plus the §3.4 column store (Virtuoso);
//   - the Datagen social-network generator with pluggable degree
//     distributions and the rewiring post-processor of §2.2, the
//     Graph500 R-MAT generator, and Table 1 surrogate datasets.
//
// Quick start:
//
//	g, _ := graphalytics.GenerateSocialNetwork(10_000, 42)
//	b := &graphalytics.Benchmark{
//	    Platforms: graphalytics.AllPlatforms(),
//	    Graphs:    []*graphalytics.Graph{g},
//	    Validate:  true,
//	}
//	rep, _ := b.Run(context.Background())
//	fmt.Print(graphalytics.Figure4Table(rep.Results))
package graphalytics

import (
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/core"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/gen/dist"
	"graphalytics/internal/gen/rewire"
	"graphalytics/internal/gen/rmat"
	"graphalytics/internal/gen/surrogate"
	"graphalytics/internal/graph"
	"graphalytics/internal/graph/gmetrics"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/dataflow"
	"graphalytics/internal/platform/graphdb"
	"graphalytics/internal/platform/mapreduce"
	"graphalytics/internal/platform/pregel"
	"graphalytics/internal/report"
	"graphalytics/internal/workload"
)

// Core graph types.
type (
	// Graph is the CSR graph shared by every component.
	Graph = graph.Graph
	// VertexID is a dense vertex index.
	VertexID = graph.VertexID
	// Builder incrementally constructs graphs.
	Builder = graph.Builder
	// LoadOptions configures text-format loading.
	LoadOptions = graph.LoadOptions
)

// Workload types.
type (
	// Algorithm names one of the Graphalytics workloads.
	Algorithm = algo.Kind
	// Params carries algorithm parameters.
	Params = algo.Params
	// StatsOutput is the STATS result type platforms return.
	StatsOutput = algo.StatsOutput
	// BFSOutput is the BFS result type platforms return.
	BFSOutput = algo.BFSOutput
	// ConnOutput is the CONN result type platforms return.
	ConnOutput = algo.ConnOutput
	// CDOutput is the CD result type platforms return.
	CDOutput = algo.CDOutput
	// EvoOutput is the EVO result type platforms return.
	EvoOutput = algo.EvoOutput
	// PROutput is the PR (PageRank) result type platforms return.
	PROutput = algo.PROutput
	// SSSPOutput is the SSSP result type platforms return.
	SSSPOutput = algo.SSSPOutput
	// LCCOutput is the LCC result type platforms return.
	LCCOutput = algo.LCCOutput
)

// The workload algorithms: the paper's five (§3.2) plus the three LDBC
// Graphalytics v1.0.1 additions.
const (
	STATS = algo.STATS
	BFS   = algo.BFS
	CONN  = algo.CONN
	CD    = algo.CD
	EVO   = algo.EVO
	PR    = algo.PR
	SSSP  = algo.SSSP
	LCC   = algo.LCC
)

// Algorithms lists every registered workload in the registry's report
// order.
func Algorithms() []Algorithm { return workload.Kinds() }

// Workload registry re-exports: the registry is the single place a
// workload is described (reference, validation policy, capability
// requirements); see internal/workload.
type (
	// WorkloadSpec is one self-describing workload registration.
	WorkloadSpec = workload.Spec
	// ValidationPolicy names an output-comparison policy.
	ValidationPolicy = workload.Policy
)

// Workloads returns every registered workload spec in report order.
func Workloads() []WorkloadSpec { return workload.All() }

// ParseAlgorithm resolves a workload name or LDBC alias ("wcc",
// "pagerank", any case) through the registry.
func ParseAlgorithm(name string) (Algorithm, error) {
	s, err := workload.Parse(name)
	if err != nil {
		return "", err
	}
	return s.Kind, nil
}

// RegisterWorkload adds a custom workload to the registry; the harness,
// report, and conformance suite pick it up without further wiring.
func RegisterWorkload(s WorkloadSpec) { workload.Register(s) }

// Harness types.
type (
	// Platform is a system under test.
	Platform = platform.Platform
	// Benchmark is a configured campaign over platforms × graphs ×
	// algorithms.
	Benchmark = core.Benchmark
	// Report is a finished campaign's results.
	Report = report.Report
	// RunResult is one cell of the benchmark matrix.
	RunResult = report.RunResult
	// IngestStat is the load phase (time + EVPS) of one dataset.
	IngestStat = report.IngestStat
	// Characteristics is a Table 1 measurement row.
	Characteristics = gmetrics.Characteristics
)

// Platform option re-exports.
type (
	// PregelOptions configures the BSP (Giraph-analogue) platform.
	PregelOptions = pregel.Options
	// MapReduceOptions configures the Hadoop-analogue platform.
	MapReduceOptions = mapreduce.Options
	// DataflowOptions configures the GraphX-analogue platform.
	DataflowOptions = dataflow.Options
	// GraphDBOptions configures the Neo4j-analogue platform.
	GraphDBOptions = graphdb.Options
)

// NewPregel returns the BSP (Giraph-analogue) platform.
func NewPregel(opts PregelOptions) Platform { return pregel.New(opts) }

// NewMapReduce returns the Hadoop-analogue platform.
func NewMapReduce(opts MapReduceOptions) Platform { return mapreduce.New(opts) }

// NewDataflow returns the GraphX-analogue platform.
func NewDataflow(opts DataflowOptions) Platform { return dataflow.New(opts) }

// NewGraphDB returns the Neo4j-analogue platform.
func NewGraphDB(opts GraphDBOptions) Platform { return graphdb.New(opts) }

// AllPlatforms returns all four platforms with default options — the
// §3.3 benchmark matrix.
func AllPlatforms() []Platform {
	return []Platform{
		NewPregel(PregelOptions{}),
		NewMapReduce(MapReduceOptions{}),
		NewDataflow(DataflowOptions{}),
		NewGraphDB(GraphDBOptions{}),
	}
}

// LoadGraph reads a graph from a Graphalytics-format edge file (.e) and
// optional vertex file (.v; pass "" to derive vertices from edges).
// Loading runs the parallel ingest pipeline on all cores; use
// LoadGraphOpts to pin the worker count.
func LoadGraph(edgePath, vertexPath string, directed bool) (*Graph, error) {
	return graph.LoadEdgeList(edgePath, vertexPath, graph.LoadOptions{Directed: directed})
}

// LoadGraphOpts is LoadGraph with full options: dataset name, self-loop
// dropping, and ingest parallelism (Workers 0 = all cores, 1 = the
// sequential loader; both produce byte-identical graphs).
func LoadGraphOpts(edgePath, vertexPath string, opts LoadOptions) (*Graph, error) {
	return graph.LoadEdgeList(edgePath, vertexPath, opts)
}

// GenerateSocialNetwork produces a Datagen person-knows-person graph
// with the default (Facebook-like) degree distribution.
func GenerateSocialNetwork(persons int, seed uint64) (*Graph, error) {
	return datagen.Generate(datagen.Config{Persons: persons, Seed: seed})
}

// DatagenConfig re-exports the full generator configuration.
type DatagenConfig = datagen.Config

// GenerateSocialNetworkConfig produces a Datagen graph from a full
// configuration (degree plugin, window, pass fractions, workers).
func GenerateSocialNetworkConfig(cfg DatagenConfig) (*Graph, error) {
	return datagen.Generate(cfg)
}

// GenerateRMAT produces a Graph500-style R-MAT graph of 2^scale
// vertices (edgeFactor <= 0 selects the Graph500 default of 16).
func GenerateRMAT(scale, edgeFactor int, seed uint64) (*Graph, error) {
	return rmat.Generate(rmat.Config{Scale: scale, EdgeFactor: edgeFactor, Seed: seed})
}

// RMATConfig re-exports the full R-MAT generator configuration
// (including the seeded Weighted option).
type RMATConfig = rmat.Config

// GenerateRMATConfig produces an R-MAT graph from a full configuration.
func GenerateRMATConfig(cfg RMATConfig) (*Graph, error) {
	return rmat.Generate(cfg)
}

// GenerateSurrogate synthesizes a stand-in for one of the Table 1
// datasets ("amazon", "youtube", "livejournal", "patents", "wikipedia")
// at 1/scaleDiv of its published size (0 = default scale).
func GenerateSurrogate(name string, scaleDiv int) (*Graph, error) {
	spec, err := surrogate.Find(name)
	if err != nil {
		return nil, err
	}
	return surrogate.Generate(spec, surrogate.Options{ScaleDiv: scaleDiv})
}

// Measure computes the Table 1 characteristics of g.
func Measure(g *Graph) Characteristics { return gmetrics.Measure(g) }

// RewireTarget re-exports the rewiring target of §2.2.
type RewireTarget = rewire.Target

// Rewire hill-climbs an undirected graph toward target structural
// characteristics while preserving its degree sequence (§2.2).
func Rewire(g *Graph, target RewireTarget) (*Graph, error) {
	res, err := rewire.Rewire(g, target)
	if err != nil {
		return nil, err
	}
	return res.Graph, nil
}

// Reference implementations (the Output Validator's gold standard).

// RunReferenceBFS runs the sequential reference BFS.
func RunReferenceBFS(g *Graph, source VertexID) []int64 {
	return algo.RunBFS(g, source)
}

// RunReferenceStats runs the sequential reference STATS.
func RunReferenceStats(g *Graph) algo.StatsOutput { return algo.RunStats(g) }

// RunReferenceConn runs the sequential reference CONN.
func RunReferenceConn(g *Graph) []VertexID { return algo.RunConn(g) }

// RunReferenceCD runs the sequential reference CD.
func RunReferenceCD(g *Graph, p Params) []int64 { return algo.RunCD(g, p) }

// RunReferenceEvo runs the sequential reference EVO.
func RunReferenceEvo(g *Graph, p Params) algo.EvoOutput { return algo.RunEvo(g, p) }

// RunReferencePageRank runs the sequential reference PageRank.
func RunReferencePageRank(g *Graph, p Params) PROutput { return algo.RunPageRank(g, p) }

// RunReferenceSSSP runs the sequential reference SSSP (Dijkstra over
// the graph's edge weights; unit weights when unweighted).
func RunReferenceSSSP(g *Graph, source VertexID) SSSPOutput { return algo.RunSSSP(g, source) }

// RunReferenceLCC runs the sequential reference per-vertex LCC.
func RunReferenceLCC(g *Graph) LCCOutput { return algo.RunLCC(g) }

// Modularity scores a community labeling (the CD quality measure).
func Modularity(g *Graph, labels []int64) float64 {
	return algo.Modularity(g, algo.CDOutput(labels))
}

// Report rendering re-exports.

// Figure4Table renders the runtime matrix in the shape of Figure 4.
func Figure4Table(results []RunResult) string { return report.Figure4Table(results) }

// Figure5Table renders CONN kTEPS in the shape of Figure 5.
func Figure5Table(results []RunResult) string { return report.Figure5Table(results) }

// IngestTable renders the per-dataset load-time/EVPS table.
func IngestTable(ingests []IngestStat) string { return report.IngestTable(ingests) }

// DegreeDistribution re-exports the Datagen degree plugin interface.
type DegreeDistribution = dist.Distribution

// NewZetaDegrees returns the Zeta(s) degree plugin (Figure 1 uses 1.7).
func NewZetaDegrees(s float64, maxDegree int) (DegreeDistribution, error) {
	return dist.NewZeta(s, maxDegree)
}

// NewGeometricDegrees returns the Geometric(p) degree plugin (Figure 1
// uses 0.12).
func NewGeometricDegrees(p float64, maxDegree int) (DegreeDistribution, error) {
	return dist.NewGeometric(p, maxDegree)
}

// DefaultTimeout is a reasonable per-run timeout for interactive use.
const DefaultTimeout = 10 * time.Minute
