package graphalytics_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphalytics"
	"graphalytics/internal/algo"
	"graphalytics/internal/core"
	"graphalytics/internal/telemetry"
)

// chromeEvent mirrors the trace_event fields the telemetry sink emits.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

// TestCampaignTraceGolden runs a small campaign with the process-wide
// tracer enabled — the same path `graphalytics -trace out.json` takes —
// and asserts the emitted file is a valid Chrome trace: parseable JSON,
// complete "X" events only, monotonically ordered, and covering the
// scheduler, cell-phase, and ingest-stage span categories.
func TestCampaignTraceGolden(t *testing.T) {
	// A small edge file loaded with 2 ingest workers exercises the
	// parallel ingest pipeline (parse-edges / intern / build-csr spans).
	dir := t.TempDir()
	epath := filepath.Join(dir, "g.e")
	var ebuf bytes.Buffer
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&ebuf, "%d %d\n", i, (i+1)%200)
	}
	if err := os.WriteFile(epath, ebuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var trace bytes.Buffer
	telemetry.StartTrace(&trace)

	g, err := graphalytics.LoadGraphOpts(epath, "", graphalytics.LoadOptions{Workers: 2})
	if err != nil {
		telemetry.StopTrace()
		t.Fatal(err)
	}
	bench := &core.Benchmark{
		Platforms:       []graphalytics.Platform{graphalytics.NewPregel(graphalytics.PregelOptions{})},
		Graphs:          []*graphalytics.Graph{g},
		Algorithms:      []algo.Kind{algo.BFS, algo.CONN},
		Validate:        true,
		MonitorInterval: time.Millisecond,
		Parallelism:     2,
		Warmup:          1,
		Reps:            2,
	}
	rep, err := bench.Run(context.Background())
	if err != nil {
		telemetry.StopTrace()
		t.Fatal(err)
	}
	if err := telemetry.StopTrace(); err != nil {
		t.Fatalf("StopTrace: %v", err)
	}

	var events []chromeEvent
	if err := json.Unmarshal(trace.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, trace.Bytes())
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}

	cats := map[string]int{}
	last := -1.0
	for _, e := range events {
		if e.Ph != "X" {
			t.Fatalf("non-complete event: %+v", e)
		}
		if e.Name == "" || e.Cat == "" {
			t.Fatalf("unnamed event: %+v", e)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Fatalf("negative ts/dur: %+v", e)
		}
		// Events are written at span End under one mutex, so file order
		// is completion order: end timestamps never decrease.
		if end := e.Ts + e.Dur; end < last-0.002 {
			t.Fatalf("end time went backwards: %v after %v (%+v)", end, last, e)
		} else if end > last {
			last = end
		}
		cats[e.Cat]++
	}
	for _, want := range []string{"sched", "cell", "ingest"} {
		if cats[want] == 0 {
			t.Errorf("no %q spans in trace; categories: %v", want, cats)
		}
	}

	// The cell phases the campaign ran must appear by name prefix.
	names := map[string]bool{}
	for _, e := range events {
		names[e.Name] = true
	}
	for _, prefix := range []string{"load:", "warmup:", "rep:", "validate:"} {
		found := false
		for n := range names {
			if len(n) >= len(prefix) && n[:len(prefix)] == prefix {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %q cell span in trace", prefix)
		}
	}

	// The monitored campaign must carry a resource envelope per cell.
	for _, r := range rep.Results {
		if r.Resources == nil {
			t.Fatalf("cell %s/%s/%s has no resource envelope", r.Platform, r.Graph, r.Algorithm)
		}
		if r.Resources.PeakHeapBytes == 0 {
			t.Errorf("cell %s resources have zero peak heap", r.Algorithm)
		}
	}
}
